#include "linalg/updatable_cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::linalg {

UpdatableCholesky::UpdatableCholesky(std::size_t capacity) {
  l_.reserve(capacity * (capacity + 1) / 2);
}

bool UpdatableCholesky::append(const Vector& cross, double diag,
                               double rel_tol) {
  TOMO_REQUIRE(cross.size() == size_,
               "updatable cholesky: cross-term length mismatch");
  TOMO_REQUIRE(diag > 0.0, "updatable cholesky: non-positive diagonal");

  // Forward-substitute the new off-diagonal row: L row = cross.
  Vector row(size_);
  double row_norm2 = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    double sum = cross[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= at(i, k) * row[k];
    }
    row[i] = sum / at(i, i);
    row_norm2 += row[i] * row[i];
  }
  const double schur = diag - row_norm2;
  if (!(schur > rel_tol * diag)) {
    return false;  // numerically dependent on the factored columns
  }
  for (std::size_t i = 0; i < size_; ++i) {
    l_.push_back(row[i]);
  }
  l_.push_back(std::sqrt(schur));
  ++size_;
  return true;
}

void UpdatableCholesky::remove(std::size_t position) {
  TOMO_REQUIRE(position < size_, "updatable cholesky: remove out of range");

  // Drop row `position`; the trailing rows shift up one slot and keep their
  // old column count, leaving a lower-Hessenberg tail to re-triangularize.
  // Work on an unpacked copy of those rows for index clarity (k is small).
  const std::size_t tail = size_ - position - 1;
  std::vector<Vector> rows(tail);
  for (std::size_t i = 0; i < tail; ++i) {
    rows[i].resize(position + i + 2);
    for (std::size_t c = 0; c <= position + i + 1; ++c) {
      rows[i][c] = at(position + i + 1, c);
    }
  }
  // Givens rotations from the right: rotation j mixes columns j and j + 1,
  // zeroing rows[j - position][j + 1] against its diagonal.
  for (std::size_t j = position; j < position + tail; ++j) {
    const std::size_t r = j - position;
    const double a = rows[r][j];
    const double b = rows[r][j + 1];
    // b is the deleted-shift row's original diagonal (sqrt of a positive
    // Schur complement, untouched by the earlier rotations, which only
    // reach columns <= j), so the rotation is always well defined and the
    // new diagonal radius = hypot(a, b) stays positive.
    const double radius = std::hypot(a, b);
    TOMO_ASSERT(radius > 0.0);
    const double c = a / radius;
    const double s = b / radius;
    for (std::size_t i = r; i < tail; ++i) {
      const double u = rows[i][j];
      const double v = rows[i][j + 1];
      rows[i][j] = c * u + s * v;
      rows[i][j + 1] = c * v - s * u;
    }
  }
  // Repack: rows before `position` are untouched; each tail row drops its
  // (now zero) final entry.
  for (std::size_t i = 0; i < tail; ++i) {
    const std::size_t r = position + i;
    for (std::size_t c = 0; c <= r; ++c) {
      at(r, c) = rows[i][c];
    }
  }
  --size_;
  l_.resize(size_ * (size_ + 1) / 2);
}

Vector UpdatableCholesky::solve(const Vector& rhs) const {
  TOMO_REQUIRE(rhs.size() == size_,
               "updatable cholesky: solve rhs length mismatch");
  Vector y(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    double sum = rhs[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= at(i, k) * y[k];
    }
    y[i] = sum / at(i, i);
  }
  Vector z(size_);
  for (std::size_t i = size_; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < size_; ++k) {
      sum -= at(k, i) * z[k];
    }
    z[i] = sum / at(i, i);
  }
  return z;
}

void UpdatableCholesky::clear() {
  l_.clear();
  size_ = 0;
}

}  // namespace tomo::linalg
