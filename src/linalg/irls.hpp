// Iteratively reweighted least squares (IRLS) approximation of L1
// regression: min ||A x - b||_1. Cheaper than the exact simplex LP; used in
// the solver ablation and as a fallback on systems too large for the LP.
#pragma once

#include "linalg/matrix.hpp"

namespace tomo::linalg {

struct IrlsResult {
  Vector x;
  double objective = 0.0;  // ||A x - b||_1
  std::size_t iterations = 0;
  bool converged = false;
};

/// `epsilon` smooths the 1/|r| weights; `tol` is the relative change in the
/// L1 objective that counts as convergence.
IrlsResult irls_l1(const Matrix& a, const Vector& b,
                   std::size_t max_iterations = 50, double epsilon = 1e-8,
                   double tol = 1e-8);

}  // namespace tomo::linalg
