#include "linalg/irls.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/qr.hpp"
#include "util/error.hpp"

namespace tomo::linalg {

IrlsResult irls_l1(const Matrix& a, const Vector& b,
                   std::size_t max_iterations, double epsilon, double tol) {
  TOMO_REQUIRE(b.size() == a.rows(), "irls: rhs length mismatch");
  const std::size_t m = a.rows();

  IrlsResult result;
  result.x = least_squares(a, b);
  result.objective = norm1(residual(a, result.x, b));

  for (result.iterations = 1; result.iterations <= max_iterations;
       ++result.iterations) {
    const Vector r = residual(a, result.x, b);
    // Weighted least squares with w_i = 1/max(|r_i|, eps): scale each row
    // and the rhs by sqrt(w_i).
    Matrix aw(m, a.cols());
    Vector bw(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double w = 1.0 / std::max(std::abs(r[i]), epsilon);
      const double s = std::sqrt(w);
      for (std::size_t j = 0; j < a.cols(); ++j) {
        aw(i, j) = s * a(i, j);
      }
      bw[i] = s * b[i];
    }
    Vector x_next = least_squares(aw, bw);
    const double obj_next = norm1(residual(a, x_next, b));
    const double improvement = result.objective - obj_next;
    if (obj_next < result.objective) {
      result.x = std::move(x_next);
      result.objective = obj_next;
    }
    if (std::abs(improvement) <=
        tol * std::max(1.0, result.objective)) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace tomo::linalg
