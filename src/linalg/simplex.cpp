#include "linalg/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tomo::linalg {

namespace {

constexpr double kPivotTol = 1e-9;

/// Standard tableau simplex on  min c^T x, A x = b (b >= 0 expected),
/// starting from the given basis (basis[i] = column basic in row i, and the
/// tableau columns of the basis must form an identity).
class Tableau {
 public:
  Tableau(const Matrix& a, const Vector& b, const Vector& c,
          std::vector<std::size_t> basis)
      : m_(a.rows()), n_(a.cols()), t_(a.rows() + 1, a.cols() + 1),
        basis_(std::move(basis)) {
    TOMO_ASSERT(basis_.size() == m_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) t_(i, j) = a(i, j);
      t_(i, n_) = b[i];
    }
    // Objective row: reduced costs c_j - c_B^T B^{-1} A_j. With an identity
    // starting basis, subtract c[basis[i]] * row_i from the cost row.
    for (std::size_t j = 0; j < n_; ++j) t_(m_, j) = c[j];
    t_(m_, n_) = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = c[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= n_; ++j) {
        t_(m_, j) -= cb * t_(i, j);
      }
    }
  }

  LpStatus run(std::size_t max_iterations, std::size_t& iterations) {
    for (; iterations < max_iterations; ++iterations) {
      // Dantzig rule with Bland fallback every 64 iterations to break
      // potential cycles on degenerate problems.
      const bool bland = (iterations % 64 == 63);
      std::size_t enter = n_;
      double best = -kPivotTol;
      for (std::size_t j = 0; j < n_; ++j) {
        const double rc = t_(m_, j);
        if (rc < best) {
          if (bland) {
            enter = j;
            break;
          }
          best = rc;
          enter = j;
        }
      }
      if (enter == n_) {
        return LpStatus::kOptimal;
      }
      // Ratio test.
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double aij = t_(i, enter);
        if (aij > kPivotTol) {
          const double ratio = t_(i, n_) / aij;
          if (ratio < best_ratio - kPivotTol ||
              (ratio < best_ratio + kPivotTol && leave < m_ &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) {
        return LpStatus::kUnbounded;
      }
      pivot(leave, enter);
    }
    return LpStatus::kIterationLimit;
  }

  Vector extract_solution() const {
    Vector x(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      x[basis_[i]] = t_(i, n_);
    }
    return x;
  }

  double objective() const { return -t_(m_, n_); }
  const std::vector<std::size_t>& basis() const { return basis_; }

 private:
  void pivot(std::size_t row, std::size_t col) {
    const double p = t_(row, col);
    TOMO_ASSERT(std::abs(p) > kPivotTol);
    for (std::size_t j = 0; j <= n_; ++j) t_(row, j) /= p;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double f = t_(i, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= n_; ++j) {
        t_(i, j) -= f * t_(row, j);
      }
      t_(i, col) = 0.0;
    }
    basis_[row] = col;
  }

  std::size_t m_, n_;
  Matrix t_;  // (m+1) x (n+1): constraint rows + cost row, rhs last column
  std::vector<std::size_t> basis_;
};

}  // namespace

LpResult simplex_solve(const Matrix& a, const Vector& b, const Vector& c,
                       std::size_t max_iterations) {
  TOMO_REQUIRE(b.size() == a.rows(), "simplex: rhs length mismatch");
  TOMO_REQUIRE(c.size() == a.cols(), "simplex: cost length mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (max_iterations == 0) {
    max_iterations = 200 * (m + n) + 1000;
  }

  LpResult result;

  // Normalize to b >= 0 by flipping row signs.
  Matrix a2 = a;
  Vector b2 = b;
  for (std::size_t i = 0; i < m; ++i) {
    if (b2[i] < 0) {
      b2[i] = -b2[i];
      for (std::size_t j = 0; j < n; ++j) a2(i, j) = -a2(i, j);
    }
  }

  // Phase 1: minimize the sum of artificial variables.
  Matrix a_art(m, n + m);
  Vector c_art(n + m, 0.0);
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a_art(i, j) = a2(i, j);
    a_art(i, n + i) = 1.0;
    c_art[n + i] = 1.0;
    basis[i] = n + i;
  }
  Tableau phase1(a_art, b2, c_art, basis);
  LpStatus s1 = phase1.run(max_iterations, result.iterations);
  if (s1 == LpStatus::kIterationLimit) {
    result.status = s1;
    return result;
  }
  if (phase1.objective() > 1e-7) {
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Recover a feasible basis that avoids artificial columns where possible.
  // Simplest robust route: re-run from scratch with the big-M method is
  // avoidable; instead, accept the phase-1 basis and treat any artificial
  // columns stuck at zero level by giving them prohibitive cost in phase 2.
  Vector c2(n + m, 0.0);
  for (std::size_t j = 0; j < n; ++j) c2[j] = c[j];
  double big = 1.0;
  for (std::size_t j = 0; j < n; ++j) big += std::abs(c[j]);
  for (std::size_t j = n; j < n + m; ++j) c2[j] = big * 1e6;

  Tableau phase2(a_art, b2, c2, basis);
  // Reuse phase-1 work by replaying its pivots is more code than it is
  // worth at these sizes; phase 2 simply restarts from the artificial
  // basis, which is feasible because b2 >= 0.
  LpStatus s2 = phase2.run(max_iterations, result.iterations);
  result.status = s2;
  if (s2 != LpStatus::kOptimal) {
    return result;
  }
  Vector full = phase2.extract_solution();
  // If an artificial variable is still meaningfully positive, the problem
  // is infeasible (the prohibitive cost would otherwise have expelled it).
  for (std::size_t j = n; j < n + m; ++j) {
    if (full[j] > 1e-6) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }
  result.x.assign(full.begin(), full.begin() + static_cast<long>(n));
  result.objective = dot(result.x, c);
  return result;
}

L1Result l1_regression(const Matrix& a, const Vector& b, double lambda,
                       std::size_t max_iterations) {
  TOMO_REQUIRE(b.size() == a.rows(), "l1_regression: rhs length mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (max_iterations == 0) {
    max_iterations = 400 * (m + n) + 2000;
  }

  // Variables: [x (n), s+ (m), s- (m)];  A x + s+ - s- = b.
  // After flipping rows so b >= 0, the s+ columns form a feasible identity
  // basis, so a single simplex phase suffices.
  Matrix big(m, n + 2 * m);
  Vector b2 = b;
  Vector cost(n + 2 * m, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost[j] = lambda;
  for (std::size_t j = n; j < n + 2 * m; ++j) cost[j] = 1.0;

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double sign = (b[i] < 0) ? -1.0 : 1.0;
    b2[i] = std::abs(b[i]);
    for (std::size_t j = 0; j < n; ++j) big(i, j) = sign * a(i, j);
    big(i, n + i) = sign;         // s+ column
    big(i, n + m + i) = -sign;    // s- column
    // After the flip, whichever slack column has coefficient +1 in this row
    // is basic: s+ for b_i >= 0, s- for b_i < 0.
    basis[i] = (sign > 0) ? n + i : n + m + i;
  }

  L1Result out;
  std::size_t iterations = 0;
  Tableau tab(big, b2, cost, basis);
  LpStatus status = tab.run(max_iterations, iterations);
  Vector full = tab.extract_solution();
  out.x.assign(full.begin(), full.begin() + static_cast<long>(n));
  out.objective = tab.objective();
  out.optimal = (status == LpStatus::kOptimal);
  return out;
}

}  // namespace tomo::linalg
