#include "linalg/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  for (const auto& row : rows) {
    append_row(Vector(row));
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  TOMO_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  TOMO_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::row_data(std::size_t r) {
  TOMO_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::row_data(std::size_t r) const {
  TOMO_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

void Matrix::append_row(const Vector& row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  TOMO_REQUIRE(row.size() == cols_, "appending a row of mismatched width");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Vector Matrix::multiply(const Vector& x) const {
  TOMO_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      sum += row[c] * x[c];
    }
    y[r] = sum;
  }
  return y;
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  TOMO_REQUIRE(x.size() == rows_, "matrix^T-vector size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      y[c] += row[c] * xr;
    }
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double norm2(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double norm1(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += std::abs(x);
  return sum;
}

double norm_inf(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

double dot(const Vector& a, const Vector& b) {
  TOMO_REQUIRE(a.size() == b.size(), "dot-product size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  TOMO_REQUIRE(a.size() == b.size(), "axpy size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vector residual(const Matrix& a, const Vector& x, const Vector& b) {
  TOMO_REQUIRE(b.size() == a.rows(), "residual size mismatch");
  Vector ax = a.multiply(x);
  Vector r(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ax[i];
  return r;
}

}  // namespace tomo::linalg
