// Dense row-major matrix and vector helpers.
//
// libtomo's linear systems are small by numerical-linear-algebra standards
// (a few thousand unknowns), so a straightforward dense implementation with
// careful algorithms (Householder QR, Lawson-Hanson NNLS, simplex) is both
// sufficient and dependency-free.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace tomo::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construction from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw pointer to the start of row r (row-major storage).
  double* row_data(std::size_t r);
  const double* row_data(std::size_t r) const;

  /// Appends a row; its size must equal cols() (or define cols if empty).
  void append_row(const Vector& row);

  Matrix transposed() const;

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// y = A^T x.
  Vector multiply_transposed(const Vector& x) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double norm2(const Vector& v);

/// L1 norm.
double norm1(const Vector& v);

/// Max-abs norm.
double norm_inf(const Vector& v);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// a + s*b, element-wise; sizes must match.
Vector axpy(const Vector& a, double s, const Vector& b);

/// Residual b - A x.
Vector residual(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace tomo::linalg
