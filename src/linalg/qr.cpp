#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace tomo::linalg {

namespace {

/// Downdated squared norms below this fraction of their reference value
/// are cancellation noise and trigger an exact recomputation. 10 * eps on
/// the squared norm keeps ~half the mantissa of the norm itself.
constexpr double kNormDriftTol =
    10.0 * std::numeric_limits<double>::epsilon();

}  // namespace

QrDecomposition::QrDecomposition(const Matrix& a) : qr_(a) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  const std::size_t steps = std::min(m, n);
  tau_.assign(steps, 0.0);
  rdiag_.assign(steps, 0.0);
  perm_.resize(n);
  for (std::size_t j = 0; j < n; ++j) perm_[j] = j;

  // Column squared norms for pivot selection, downdated as we go. The
  // reference norms track the value at the last exact computation: when
  // the running downdate has cancelled away most of a column's mass, the
  // difference of squares carries no accurate digits anymore and the norm
  // is recomputed from the remaining rows (LAPACK xGEQPF's drift rule) —
  // otherwise pivot selection runs on noise for ill-conditioned systems.
  Vector colnorm(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = qr_.row_data(r);
    for (std::size_t c = 0; c < n; ++c) colnorm[c] += row[c] * row[c];
  }
  Vector colnorm_ref = colnorm;

  auto swap_columns = [&](std::size_t a_col, std::size_t b_col) {
    if (a_col == b_col) return;
    for (std::size_t r = 0; r < m; ++r) {
      std::swap(qr_(r, a_col), qr_(r, b_col));
    }
    std::swap(colnorm[a_col], colnorm[b_col]);
    std::swap(colnorm_ref[a_col], colnorm_ref[b_col]);
    std::swap(perm_[a_col], perm_[b_col]);
  };

  for (std::size_t k = 0; k < steps; ++k) {
    // Pivot: bring the column with the largest remaining norm to position k.
    std::size_t pivot = k;
    for (std::size_t j = k + 1; j < n; ++j) {
      if (colnorm[j] > colnorm[pivot]) pivot = j;
    }
    swap_columns(k, pivot);

    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t r = k; r < m; ++r) {
      norm += qr_(r, k) * qr_(r, k);
    }
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      rdiag_[k] = 0.0;
      continue;
    }
    double alpha = qr_(k, k) >= 0 ? -norm : norm;
    // v = x - alpha e1, stored in-place below the diagonal with v[0]
    // normalized to 1 implicitly via tau.
    const double vkk = qr_(k, k) - alpha;
    qr_(k, k) = vkk;
    tau_[k] = -vkk / alpha;  // tau = 2 / (v^T v) * vkk^2-normalized form
    rdiag_[k] = alpha;

    // Normalize v so v[0] = 1 (divide rows k+1.. by vkk).
    if (vkk != 0.0) {
      for (std::size_t r = k + 1; r < m; ++r) {
        qr_(r, k) /= vkk;
      }
    }

    // Apply the reflection to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t r = k + 1; r < m; ++r) {
        s += qr_(r, k) * qr_(r, j);
      }
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t r = k + 1; r < m; ++r) {
        qr_(r, j) -= s * qr_(r, k);
      }
      // Downdate the column norm, re-computing exactly when it drifts:
      // once the remaining mass is a tiny fraction of the reference norm,
      // the subtraction has cancelled the trustworthy digits away.
      const double t = qr_(k, j);
      colnorm[j] -= t * t;
      if (colnorm[j] <= kNormDriftTol * colnorm_ref[j]) {
        double exact = 0.0;
        for (std::size_t r = k + 1; r < m; ++r) {
          exact += qr_(r, j) * qr_(r, j);
        }
        colnorm[j] = exact;
        colnorm_ref[j] = exact;
      }
    }
    colnorm[k] = 0.0;
  }
}

std::size_t QrDecomposition::rank(double rel_tol) const {
  if (rdiag_.empty()) return 0;
  const double threshold = std::abs(rdiag_[0]) * rel_tol;
  std::size_t r = 0;
  while (r < rdiag_.size() && std::abs(rdiag_[r]) > threshold) {
    ++r;
  }
  return r;
}

Vector QrDecomposition::apply_qt(Vector v) const {
  const std::size_t m = qr_.rows();
  TOMO_REQUIRE(v.size() == m, "QR solve: rhs length mismatch");
  for (std::size_t k = 0; k < tau_.size(); ++k) {
    if (tau_[k] == 0.0) continue;
    double s = v[k];
    for (std::size_t r = k + 1; r < m; ++r) {
      s += qr_(r, k) * v[r];
    }
    s *= tau_[k];
    v[k] -= s;
    for (std::size_t r = k + 1; r < m; ++r) {
      v[r] -= s * qr_(r, k);
    }
  }
  return v;
}

Vector QrDecomposition::solve(const Vector& b, double rel_tol) const {
  const std::size_t n = qr_.cols();
  const std::size_t r = rank(rel_tol);
  Vector qtb = apply_qt(b);

  // Back-substitution on the leading r x r block of R.
  Vector z(n, 0.0);
  for (std::size_t i = r; i-- > 0;) {
    double sum = qtb[i];
    for (std::size_t j = i + 1; j < r; ++j) {
      sum -= qr_(i, j) * z[j];
    }
    const double diag = (i < rdiag_.size()) ? rdiag_[i] : 0.0;
    TOMO_ASSERT(diag != 0.0);
    z[i] = sum / diag;
  }

  // Undo the column permutation.
  Vector x(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    x[perm_[j]] = z[j];
  }
  return x;
}

Vector least_squares(const Matrix& a, const Vector& b, double rel_tol) {
  return QrDecomposition(a).solve(b, rel_tol);
}

}  // namespace tomo::linalg
