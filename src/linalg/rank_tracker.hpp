// Incremental row-space rank tracking.
//
// The tomography equation builder streams thousands of candidate equations
// (0/1 link-incidence rows) and must keep only rows that increase the rank
// of the system. RankTracker maintains a row-echelon basis keyed by pivot
// column so each candidate costs one elimination sweep, and accepted rows
// cost only an O(dim) insert.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

class RankTracker {
 public:
  explicit RankTracker(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t rank() const { return basis_.size(); }
  bool full_rank() const { return rank() == dim_; }

  /// Returns true (and absorbs the row into the basis) iff the sparse 0/1
  /// row with ones at `one_indices` is linearly independent of the rows
  /// accepted so far. Duplicate indices in the input are an error.
  bool try_add_ones(const std::vector<std::size_t>& one_indices);

  /// Same for a general dense row.
  bool try_add_dense(const Vector& row);

 private:
  /// Reduces `row` in place against the basis; returns the pivot column of
  /// the residue (max-|.| entry) or dim_ if the residue is negligible.
  std::size_t reduce(Vector& row) const;

  std::size_t dim_;
  // pivot column -> reduced basis row (pivot entry normalized to 1).
  std::map<std::size_t, Vector> basis_;
};

}  // namespace tomo::linalg
