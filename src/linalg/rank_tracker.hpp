// Incremental row-space rank tracking.
//
// The tomography equation builder streams thousands of candidate equations
// (0/1 link-incidence rows) and must keep only rows that increase the rank
// of the system. RankTracker maintains a row-echelon basis keyed by pivot
// column; rejected candidates are the common case, so the basis rows are
// stored sparsely and candidates reduce through a sparse accumulator driven
// by a min-heap of touched pivot columns — each sweep costs O(fill-in)
// instead of O(rank · dim). Pivots are still eliminated in ascending column
// order with the exact same subtractions the historical dense sweep
// performed (entries a basis row does not store are exact zeros, whose
// subtraction was a no-op), so accept/reject decisions are bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace tomo::linalg {

class RankTracker {
 public:
  explicit RankTracker(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t rank() const { return basis_.size(); }
  bool full_rank() const { return rank() == dim_; }

  /// Returns true (and absorbs the row into the basis) iff the sparse 0/1
  /// row with ones at `one_indices` is linearly independent of the rows
  /// accepted so far. Duplicate indices in the input are an error.
  bool try_add_ones(const std::vector<std::size_t>& one_indices);

  /// Same for a general dense row.
  bool try_add_dense(const Vector& row);

 private:
  /// Sparse row as parallel column/value arrays sorted by column, first
  /// entry the pivot (normalized to 1); exact zeros never stored. 32-bit
  /// columns halve the sweep's cache traffic (dim is far below 2^32).
  struct SparseRow {
    std::vector<std::uint32_t> cols;
    std::vector<double> vals;
  };

  static constexpr std::size_t kNoPivot = ~std::size_t{0};

  /// Reduces the scratch accumulator against the basis and absorbs it when
  /// independent; always leaves the scratch cleared.
  bool reduce_and_absorb();

  void clear_scratch();

  void touch(std::size_t col) {
    if (!touched_flag_[col]) {
      touched_flag_[col] = 1;
      touched_.push_back(col);
    }
  }

  std::size_t dim_;
  /// Basis rows in insertion order; pivot_index_ maps a pivot column to its
  /// row (kNoPivot when the column owns no basis row). Ascending-pivot
  /// processing comes from the reduction heap, not from storage order.
  std::vector<SparseRow> basis_;
  std::vector<std::size_t> pivot_index_;
  // Sparse accumulator, reused across calls: values_ holds the candidate
  // row on touched_ columns and exact zeros elsewhere; heap_ feeds the
  // reduction the touched pivot columns in ascending order.
  std::vector<double> values_;
  std::vector<std::uint8_t> touched_flag_;
  std::vector<std::size_t> touched_;
  std::vector<std::size_t> heap_;
};

}  // namespace tomo::linalg
