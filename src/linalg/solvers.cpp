#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/irls.hpp"
#include "linalg/qr.hpp"
#include "linalg/simplex.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tomo::linalg {

SolverKind solver_kind_from_string(const std::string& name) {
  if (name == "ls") return SolverKind::kLeastSquares;
  if (name == "nnls") return SolverKind::kNnls;
  if (name == "l1lp") return SolverKind::kL1Lp;
  if (name == "irls") return SolverKind::kIrls;
  throw Error("unknown solver '" + name + "' (expected ls|nnls|l1lp|irls)");
}

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kLeastSquares: return "ls";
    case SolverKind::kNnls: return "nnls";
    case SolverKind::kL1Lp: return "l1lp";
    case SolverKind::kIrls: return "irls";
  }
  return "?";
}

namespace {

void require_finite(const Vector& y) {
  for (double v : y) {
    TOMO_REQUIRE(std::isfinite(v), "solve_log_system: non-finite rhs entry");
  }
}

/// Back-substitutes u = -x and clamps to the feasible domain
/// (log-probabilities of "good" are <= 0).
LogSystemSolution finish(Vector u, std::ostringstream& detail) {
  LogSystemSolution out;
  out.x.resize(u.size());
  for (std::size_t j = 0; j < u.size(); ++j) {
    out.x[j] = -std::max(0.0, u[j]);
  }
  out.detail = detail.str();
  return out;
}

void describe_nnls(std::ostringstream& detail, const NnlsResult& r,
                   NnlsMode mode) {
  detail << "nnls[" << (mode == NnlsMode::kIncremental ? "inc" : "ref")
         << "] iters=" << r.iterations;
  if (mode == NnlsMode::kIncremental) {
    detail << " refactor=" << r.refactorizations;
  }
  if (!r.converged) detail << " (iteration cap)";
}

}  // namespace

GramSystem sparse_gram(const SparseSystemView& system, std::size_t jobs) {
  const std::size_t n = system.cols;
  GramSystem gs;
  gs.gram = Matrix(n, n);
  gs.atb.assign(n, 0.0);

  // Column -> incident-row adjacency, so each Gram row can be accumulated
  // independently (and hence in parallel) while every entry's sum still
  // runs in ascending row order — the jobs-invariance contract.
  std::vector<std::size_t> counts(n, 0);
  for (const SparseRow& row : system.rows) {
    for (std::size_t k = 0; k < row.support_size; ++k) {
      ++counts[row.support[k]];
    }
  }
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i + 1] = offsets[i] + counts[i];
  }
  std::vector<std::uint32_t> incident(offsets[n]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t r = 0; r < system.rows.size(); ++r) {
    const SparseRow& row = system.rows[r];
    for (std::size_t k = 0; k < row.support_size; ++k) {
      incident[cursor[row.support[k]]++] = static_cast<std::uint32_t>(r);
    }
  }

  util::parallel_for(jobs, n, [&](std::size_t i) {
    double* gram_row = gs.gram.row_data(i);
    double ci = 0.0;
    for (std::size_t slot = offsets[i]; slot < offsets[i + 1]; ++slot) {
      const SparseRow& row = system.rows[incident[slot]];
      const double v2 = row.value * row.value;
      for (std::size_t k = 0; k < row.support_size; ++k) {
        gram_row[row.support[k]] += v2;
      }
      // b = -y: the solvers run on the negated non-negative system.
      ci += row.value * -row.y;
    }
    gs.atb[i] = ci;
  });

  gs.btb = 0.0;
  for (const SparseRow& row : system.rows) {
    gs.btb += row.y * row.y;
  }
  return gs;
}

LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   const SolverOptions& options) {
  TOMO_REQUIRE(y.size() == a.rows(), "solve_log_system: rhs length mismatch");
  require_finite(y);

  // u = -x >= 0, b = -y >= 0.
  Vector b(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) b[i] = -y[i];

  std::ostringstream detail;
  Vector u;

  switch (options.kind) {
    case SolverKind::kLeastSquares: {
      u = least_squares(a, b);
      detail << "qr-ls";
      break;
    }
    case SolverKind::kNnls: {
      NnlsOptions nnls_options;
      nnls_options.mode = options.nnls_mode;
      nnls_options.max_iterations = options.max_iterations;
      nnls_options.tol = options.tol;
      NnlsResult r = nnls(a, b, nnls_options);
      describe_nnls(detail, r, options.nnls_mode);
      u = std::move(r.x);
      break;
    }
    case SolverKind::kL1Lp: {
      L1Result r = l1_regression(a, b);
      u = std::move(r.x);
      detail << "l1lp obj=" << r.objective
             << (r.optimal ? "" : " (not proven optimal)");
      break;
    }
    case SolverKind::kIrls: {
      IrlsResult r = irls_l1(a, b);
      u = std::move(r.x);
      detail << "irls iters=" << r.iterations
             << (r.converged ? "" : " (iteration cap)");
      break;
    }
  }

  LogSystemSolution out = finish(std::move(u), detail);
  out.residual_norm2 = norm2(residual(a, out.x, y));
  return out;
}

LogSystemSolution solve_log_system(const SparseSystemView& system,
                                   const SolverOptions& options) {
  for (const SparseRow& row : system.rows) {
    TOMO_REQUIRE(std::isfinite(row.y) && std::isfinite(row.value),
                 "solve_log_system: non-finite rhs entry");
  }

  LogSystemSolution out;
  if (options.kind == SolverKind::kNnls &&
      options.nnls_mode == NnlsMode::kIncremental) {
    // The headline path: Gram products straight from the sparse support;
    // the dense incidence matrix never exists.
    NnlsOptions nnls_options;
    nnls_options.max_iterations = options.max_iterations;
    nnls_options.tol = options.tol;
    const GramSystem gs = sparse_gram(system, options.jobs);
    NnlsResult r = nnls_gram(gs, nnls_options);
    std::ostringstream detail;
    describe_nnls(detail, r, NnlsMode::kIncremental);
    out = finish(std::move(r.x), detail);
  } else {
    // The remaining kinds are row-oriented; materialize a dense copy.
    Matrix a(system.rows.size(), system.cols);
    Vector y(system.rows.size());
    for (std::size_t r = 0; r < system.rows.size(); ++r) {
      const SparseRow& row = system.rows[r];
      double* dense = a.row_data(r);
      for (std::size_t k = 0; k < row.support_size; ++k) {
        dense[row.support[k]] = row.value;
      }
      y[r] = row.y;
    }
    return solve_log_system(a, y, options);
  }

  // ||A x - y|| from the sparse rows (x is the clamped solution).
  double norm = 0.0;
  for (const SparseRow& row : system.rows) {
    double ax = 0.0;
    for (std::size_t k = 0; k < row.support_size; ++k) {
      ax += out.x[row.support[k]];
    }
    const double r = row.value * ax - row.y;
    norm += r * r;
  }
  out.residual_norm2 = std::sqrt(norm);
  return out;
}

LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   SolverKind kind) {
  SolverOptions options;
  options.kind = kind;
  return solve_log_system(a, y, options);
}

}  // namespace tomo::linalg
