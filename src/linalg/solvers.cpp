#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/irls.hpp"
#include "linalg/qr.hpp"
#include "linalg/simplex.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tomo::linalg {

SolverKind solver_kind_from_string(const std::string& name) {
  if (name == "ls") return SolverKind::kLeastSquares;
  if (name == "nnls") return SolverKind::kNnls;
  if (name == "l1lp") return SolverKind::kL1Lp;
  if (name == "irls") return SolverKind::kIrls;
  throw Error("unknown solver '" + name + "' (expected ls|nnls|l1lp|irls)");
}

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kLeastSquares: return "ls";
    case SolverKind::kNnls: return "nnls";
    case SolverKind::kL1Lp: return "l1lp";
    case SolverKind::kIrls: return "irls";
  }
  return "?";
}

namespace {

void require_finite(const Vector& y) {
  for (double v : y) {
    TOMO_REQUIRE(std::isfinite(v), "solve_log_system: non-finite rhs entry");
  }
}

/// Back-substitutes u = -x and clamps to the feasible domain
/// (log-probabilities of "good" are <= 0).
LogSystemSolution finish(Vector u, std::ostringstream& detail) {
  LogSystemSolution out;
  out.x.resize(u.size());
  for (std::size_t j = 0; j < u.size(); ++j) {
    out.x[j] = -std::max(0.0, u[j]);
  }
  out.detail = detail.str();
  return out;
}

void describe_nnls(std::ostringstream& detail, const NnlsResult& r,
                   NnlsMode mode) {
  detail << "nnls[" << (mode == NnlsMode::kIncremental ? "inc" : "ref")
         << "] iters=" << r.iterations;
  if (mode == NnlsMode::kIncremental) {
    detail << " refactor=" << r.refactorizations;
  }
  if (!r.converged) detail << " (iteration cap)";
}

/// Column -> incident-row adjacency, so each Gram row can be accumulated
/// independently (and hence in parallel) while every entry's sum still
/// runs in ascending row order — the jobs-invariance contract.
struct ColumnAdjacency {
  std::vector<std::size_t> offsets;       // cols + 1 prefix sums
  std::vector<std::uint32_t> incident;    // row ids, ascending per column
};

ColumnAdjacency column_adjacency(const SparseSystemView& system) {
  const std::size_t n = system.cols;
  ColumnAdjacency adj;
  std::vector<std::size_t> counts(n, 0);
  for (const SparseRow& row : system.rows) {
    for (std::size_t k = 0; k < row.support_size; ++k) {
      ++counts[row.support[k]];
    }
  }
  adj.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    adj.offsets[i + 1] = adj.offsets[i] + counts[i];
  }
  adj.incident.resize(adj.offsets[n]);
  std::vector<std::size_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (std::size_t r = 0; r < system.rows.size(); ++r) {
    const SparseRow& row = system.rows[r];
    for (std::size_t k = 0; k < row.support_size; ++k) {
      adj.incident[cursor[row.support[k]]++] = static_cast<std::uint32_t>(r);
    }
  }
  return adj;
}

}  // namespace

void accumulate_gram(GramSystem& gs, const SparseSystemView& system,
                     std::size_t jobs) {
  const std::size_t n = system.cols;
  if (gs.gram.rows() != n || gs.gram.cols() != n) {
    TOMO_REQUIRE(gs.gram.rows() == 0 && gs.atb.empty() && gs.btb == 0.0,
                 "accumulate_gram: existing gram has a different column "
                 "count");
    gs.gram = Matrix(n, n);
    gs.atb.assign(n, 0.0);
  }

  const ColumnAdjacency adj = column_adjacency(system);
  util::parallel_for(jobs, n, [&](std::size_t i) {
    double* gram_row = gs.gram.row_data(i);
    double ci = gs.atb[i];
    for (std::size_t slot = adj.offsets[i]; slot < adj.offsets[i + 1];
         ++slot) {
      const SparseRow& row = system.rows[adj.incident[slot]];
      const double v2 = row.value * row.value;
      for (std::size_t k = 0; k < row.support_size; ++k) {
        gram_row[row.support[k]] += v2;
      }
      // b = -y: the solvers run on the negated non-negative system.
      ci += row.value * -row.y;
    }
    gs.atb[i] = ci;
  });

  for (const SparseRow& row : system.rows) {
    gs.btb += row.y * row.y;
  }
}

void refresh_gram_rhs(GramSystem& gs, const SparseSystemView& system,
                      std::size_t jobs) {
  const std::size_t n = system.cols;
  TOMO_REQUIRE(gs.gram.rows() == n && gs.gram.cols() == n,
               "refresh_gram_rhs: gram shape does not match the system");
  gs.atb.assign(n, 0.0);
  gs.btb = 0.0;
  const ColumnAdjacency adj = column_adjacency(system);
  util::parallel_for(jobs, n, [&](std::size_t i) {
    double ci = 0.0;
    for (std::size_t slot = adj.offsets[i]; slot < adj.offsets[i + 1];
         ++slot) {
      const SparseRow& row = system.rows[adj.incident[slot]];
      ci += row.value * -row.y;
    }
    gs.atb[i] = ci;
  });
  for (const SparseRow& row : system.rows) {
    gs.btb += row.y * row.y;
  }
}

GramSystem sparse_gram(const SparseSystemView& system, std::size_t jobs) {
  GramSystem gs;
  accumulate_gram(gs, system, jobs);
  return gs;
}

LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   const SolverOptions& options) {
  TOMO_REQUIRE(y.size() == a.rows(), "solve_log_system: rhs length mismatch");
  require_finite(y);

  // u = -x >= 0, b = -y >= 0.
  Vector b(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) b[i] = -y[i];

  std::ostringstream detail;
  Vector u;

  switch (options.kind) {
    case SolverKind::kLeastSquares: {
      u = least_squares(a, b);
      detail << "qr-ls";
      break;
    }
    case SolverKind::kNnls: {
      NnlsOptions nnls_options;
      nnls_options.mode = options.nnls_mode;
      nnls_options.max_iterations = options.max_iterations;
      nnls_options.tol = options.tol;
      NnlsResult r = nnls(a, b, nnls_options);
      describe_nnls(detail, r, options.nnls_mode);
      u = std::move(r.x);
      break;
    }
    case SolverKind::kL1Lp: {
      L1Result r = l1_regression(a, b);
      u = std::move(r.x);
      detail << "l1lp obj=" << r.objective
             << (r.optimal ? "" : " (not proven optimal)");
      break;
    }
    case SolverKind::kIrls: {
      IrlsResult r = irls_l1(a, b);
      u = std::move(r.x);
      detail << "irls iters=" << r.iterations
             << (r.converged ? "" : " (iteration cap)");
      break;
    }
  }

  LogSystemSolution out = finish(std::move(u), detail);
  out.residual_norm2 = norm2(residual(a, out.x, y));
  return out;
}

namespace {

/// ||A x - y|| from the sparse rows (x is the clamped solution).
double sparse_residual_norm(const SparseSystemView& system, const Vector& x) {
  double norm = 0.0;
  for (const SparseRow& row : system.rows) {
    double ax = 0.0;
    for (std::size_t k = 0; k < row.support_size; ++k) {
      ax += x[row.support[k]];
    }
    const double r = row.value * ax - row.y;
    norm += r * r;
  }
  return std::sqrt(norm);
}

/// The shared incremental-NNLS tail of the two sparse entry points: solve
/// on the (caller- or locally-built) Gram system, clamp, recover the
/// residual from the rows.
LogSystemSolution solve_sparse_incremental(const SparseSystemView& system,
                                           const GramSystem& gs,
                                           const SolverOptions& options) {
  NnlsOptions nnls_options;
  nnls_options.max_iterations = options.max_iterations;
  nnls_options.tol = options.tol;
  nnls_options.warm_start = options.warm_start;
  nnls_options.warm_factor = options.nnls_warm_factor;
  NnlsResult r = nnls_gram(gs, nnls_options);
  std::ostringstream detail;
  describe_nnls(detail, r, NnlsMode::kIncremental);
  if (options.nnls_warm_factor != nullptr) {
    detail << " warm=" << options.nnls_warm_factor->passive.size();
  } else if (!options.warm_start.empty()) {
    detail << " warm=" << options.warm_start.size();
  }
  LogSystemSolution out = finish(std::move(r.x), detail);
  out.active_set = std::move(r.active_set);
  out.residual_norm2 = sparse_residual_norm(system, out.x);
  return out;
}

}  // namespace

LogSystemSolution solve_log_system(const SparseSystemView& system,
                                   const SolverOptions& options) {
  for (const SparseRow& row : system.rows) {
    TOMO_REQUIRE(std::isfinite(row.y) && std::isfinite(row.value),
                 "solve_log_system: non-finite rhs entry");
  }

  if (options.kind == SolverKind::kNnls &&
      options.nnls_mode == NnlsMode::kIncremental) {
    // The headline path: Gram products straight from the sparse support;
    // the dense incidence matrix never exists.
    return solve_sparse_incremental(system, sparse_gram(system, options.jobs),
                                    options);
  }
  // The remaining kinds are row-oriented; materialize a dense copy.
  Matrix a(system.rows.size(), system.cols);
  Vector y(system.rows.size());
  for (std::size_t r = 0; r < system.rows.size(); ++r) {
    const SparseRow& row = system.rows[r];
    double* dense = a.row_data(r);
    for (std::size_t k = 0; k < row.support_size; ++k) {
      dense[row.support[k]] = row.value;
    }
    y[r] = row.y;
  }
  return solve_log_system(a, y, options);
}

LogSystemSolution solve_log_system(const SparseSystemView& system,
                                   const GramSystem& gs,
                                   const SolverOptions& options) {
  TOMO_REQUIRE(options.kind == SolverKind::kNnls &&
                   options.nnls_mode == NnlsMode::kIncremental,
               "solve_log_system(gram): only the incremental NNLS engine "
               "consumes a caller-held Gram system");
  TOMO_REQUIRE(gs.gram.cols() == system.cols,
               "solve_log_system(gram): gram shape does not match the view");
  for (const SparseRow& row : system.rows) {
    TOMO_REQUIRE(std::isfinite(row.y) && std::isfinite(row.value),
                 "solve_log_system: non-finite rhs entry");
  }
  return solve_sparse_incremental(system, gs, options);
}

LogSystemSolution solve_log_system_reuse(const SparseSystemView& system,
                                         GramSystem& gs,
                                         const SolverOptions& options) {
  refresh_gram_rhs(gs, system, options.jobs);
  return solve_log_system(system, gs, options);
}

LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   SolverKind kind) {
  SolverOptions options;
  options.kind = kind;
  return solve_log_system(a, y, options);
}

}  // namespace tomo::linalg
