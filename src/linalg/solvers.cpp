#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/irls.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/simplex.hpp"
#include "util/error.hpp"

namespace tomo::linalg {

SolverKind solver_kind_from_string(const std::string& name) {
  if (name == "ls") return SolverKind::kLeastSquares;
  if (name == "nnls") return SolverKind::kNnls;
  if (name == "l1lp") return SolverKind::kL1Lp;
  if (name == "irls") return SolverKind::kIrls;
  throw Error("unknown solver '" + name + "' (expected ls|nnls|l1lp|irls)");
}

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kLeastSquares: return "ls";
    case SolverKind::kNnls: return "nnls";
    case SolverKind::kL1Lp: return "l1lp";
    case SolverKind::kIrls: return "irls";
  }
  return "?";
}

LogSystemSolution solve_log_system(const Matrix& a, const Vector& y,
                                   SolverKind kind) {
  TOMO_REQUIRE(y.size() == a.rows(), "solve_log_system: rhs length mismatch");
  for (double v : y) {
    TOMO_REQUIRE(std::isfinite(v), "solve_log_system: non-finite rhs entry");
  }

  // u = -x >= 0, b = -y >= 0.
  Vector b(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) b[i] = -y[i];

  LogSystemSolution out;
  std::ostringstream detail;
  Vector u;

  switch (kind) {
    case SolverKind::kLeastSquares: {
      u = least_squares(a, b);
      detail << "qr-ls";
      break;
    }
    case SolverKind::kNnls: {
      NnlsResult r = nnls(a, b);
      u = std::move(r.x);
      detail << "nnls iters=" << r.iterations
             << (r.converged ? "" : " (iteration cap)");
      break;
    }
    case SolverKind::kL1Lp: {
      L1Result r = l1_regression(a, b);
      u = std::move(r.x);
      detail << "l1lp obj=" << r.objective
             << (r.optimal ? "" : " (not proven optimal)");
      break;
    }
    case SolverKind::kIrls: {
      IrlsResult r = irls_l1(a, b);
      u = std::move(r.x);
      detail << "irls iters=" << r.iterations
             << (r.converged ? "" : " (iteration cap)");
      break;
    }
  }

  // Back-substitute and clamp to the feasible domain (log-probabilities of
  // "good" are <= 0).
  out.x.resize(u.size());
  for (std::size_t j = 0; j < u.size(); ++j) {
    out.x[j] = -std::max(0.0, u[j]);
  }
  out.residual_norm2 = norm2(residual(a, out.x, y));
  out.detail = detail.str();
  return out;
}

}  // namespace tomo::linalg
