#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tomo::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  TOMO_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    TOMO_REQUIRE(diag > 0.0,
                 "cholesky: matrix is not positive definite");
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l_(i, k) * l_(j, k);
      }
      l_(i, j) = sum / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  TOMO_REQUIRE(b.size() == n, "cholesky solve: rhs length mismatch");
  // Forward substitution L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= l_(i, k) * y[k];
    }
    y[i] = sum / l_(i, i);
  }
  // Back substitution L^T x = y.
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= l_(k, i) * x[k];
    }
    x[i] = sum / l_(i, i);
  }
  return x;
}

Vector normal_equations_least_squares(const Matrix& a, const Vector& b,
                                      double ridge) {
  TOMO_REQUIRE(b.size() == a.rows(), "normal equations: rhs mismatch");
  TOMO_REQUIRE(ridge >= 0.0, "ridge must be non-negative");
  const std::size_t n = a.cols();
  Matrix ata(n, n);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    for (std::size_t i = 0; i < n; ++i) {
      if (row[i] == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) {
        ata(i, j) += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    ata(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) {
      ata(i, j) = ata(j, i);
    }
  }
  const Vector atb = a.multiply_transposed(b);
  return CholeskyDecomposition(ata).solve(atb);
}

}  // namespace tomo::linalg
