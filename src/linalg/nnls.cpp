#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/qr.hpp"
#include "util/error.hpp"

namespace tomo::linalg {

namespace {

/// Least squares restricted to the columns in `passive` (solution entries
/// for other columns are zero).
Vector restricted_least_squares(const Matrix& a, const Vector& b,
                                const std::vector<std::size_t>& passive) {
  Matrix sub(a.rows(), passive.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < passive.size(); ++j) {
      sub(r, j) = a(r, passive[j]);
    }
  }
  Vector z = least_squares(sub, b);
  Vector full(a.cols(), 0.0);
  for (std::size_t j = 0; j < passive.size(); ++j) {
    full[passive[j]] = z[j];
  }
  return full;
}

}  // namespace

NnlsResult nnls(const Matrix& a, const Vector& b, std::size_t max_iterations,
                double tol) {
  TOMO_REQUIRE(b.size() == a.rows(), "nnls: rhs length mismatch");
  const std::size_t n = a.cols();
  if (max_iterations == 0) {
    max_iterations = 3 * n + 10;
  }

  NnlsResult result;
  result.x.assign(n, 0.0);
  result.iterations = 0;
  result.converged = false;

  std::vector<bool> in_passive(n, false);
  std::vector<std::size_t> passive;

  Vector w = a.multiply_transposed(residual(a, result.x, b));

  while (result.iterations < max_iterations) {
    // Optimality: all gradient components for active (zero) variables
    // non-positive.
    std::size_t best = n;
    double best_w = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = j;
      }
    }
    if (best == n) {
      result.converged = true;
      break;
    }
    in_passive[best] = true;
    passive.push_back(best);

    // Inner loop: solve the unconstrained problem on the passive set and
    // clip variables that go negative.
    for (;;) {
      ++result.iterations;
      Vector z = restricted_least_squares(a, b, passive);
      bool all_positive = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j : passive) {
        if (z[j] <= tol) {
          all_positive = false;
          const double denom = result.x[j] - z[j];
          if (denom > 0) {
            alpha = std::min(alpha, result.x[j] / denom);
          }
        }
      }
      if (all_positive) {
        result.x = std::move(z);
        break;
      }
      if (!std::isfinite(alpha)) {
        // Degenerate step; drop the offending variables outright.
        alpha = 0.0;
      }
      for (std::size_t j : passive) {
        result.x[j] += alpha * (z[j] - result.x[j]);
      }
      // Move variables that hit zero back to the active set.
      std::vector<std::size_t> still_passive;
      for (std::size_t j : passive) {
        if (result.x[j] > tol) {
          still_passive.push_back(j);
        } else {
          result.x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(still_passive);
      if (passive.empty()) break;
      if (result.iterations >= max_iterations) break;
    }

    w = a.multiply_transposed(residual(a, result.x, b));
  }

  result.residual_norm = norm2(residual(a, result.x, b));
  return result;
}

}  // namespace tomo::linalg
