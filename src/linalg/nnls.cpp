#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "linalg/qr.hpp"
#include "linalg/updatable_cholesky.hpp"
#include "util/error.hpp"

namespace tomo::linalg {

namespace {

/// Dependence threshold of every factor append on this path; shared by
/// seed_warm_factor and the solver so a cached seed admits exactly the
/// columns an inline warm-up would.
constexpr double kSeedRelTol = 1e-12;

/// Least squares restricted to the columns in `passive` (solution entries
/// for other columns are zero).
Vector restricted_least_squares(const Matrix& a, const Vector& b,
                                const std::vector<std::size_t>& passive) {
  Matrix sub(a.rows(), passive.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < passive.size(); ++j) {
      sub(r, j) = a(r, passive[j]);
    }
  }
  Vector z = least_squares(sub, b);
  Vector full(a.cols(), 0.0);
  for (std::size_t j = 0; j < passive.size(); ++j) {
    full[passive[j]] = z[j];
  }
  return full;
}

/// The historical Lawson-Hanson loop: fresh rank-revealing QR on the
/// passive submatrix every inner iteration. Kept verbatim as the
/// differential-testing baseline.
NnlsResult nnls_reference(const Matrix& a, const Vector& b,
                          std::size_t max_iterations, double tol) {
  const std::size_t n = a.cols();

  NnlsResult result;
  result.x.assign(n, 0.0);

  std::vector<bool> in_passive(n, false);
  std::vector<std::size_t> passive;

  Vector w = a.multiply_transposed(residual(a, result.x, b));

  while (result.iterations < max_iterations) {
    // Optimality: all gradient components for active (zero) variables
    // non-positive.
    std::size_t best = n;
    double best_w = tol;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = j;
      }
    }
    if (best == n) {
      result.converged = true;
      break;
    }
    in_passive[best] = true;
    passive.push_back(best);

    // Inner loop: solve the unconstrained problem on the passive set and
    // clip variables that go negative.
    for (;;) {
      ++result.iterations;
      Vector z = restricted_least_squares(a, b, passive);
      bool all_positive = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j : passive) {
        if (z[j] <= tol) {
          all_positive = false;
          const double denom = result.x[j] - z[j];
          if (denom > 0) {
            alpha = std::min(alpha, result.x[j] / denom);
          }
        }
      }
      if (all_positive) {
        result.x = std::move(z);
        break;
      }
      if (!std::isfinite(alpha)) {
        // Degenerate step; drop the offending variables outright.
        alpha = 0.0;
      }
      for (std::size_t j : passive) {
        result.x[j] += alpha * (z[j] - result.x[j]);
      }
      // Move variables that hit zero back to the active set.
      std::vector<std::size_t> still_passive;
      for (std::size_t j : passive) {
        if (result.x[j] > tol) {
          still_passive.push_back(j);
        } else {
          result.x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      passive = std::move(still_passive);
      if (passive.empty()) break;
      if (result.iterations >= max_iterations) break;
    }

    w = a.multiply_transposed(residual(a, result.x, b));
  }

  result.residual_norm = norm2(residual(a, result.x, b));
  return result;
}

/// Incremental Lawson-Hanson on a cached Gram system: the passive-set
/// normal-equations factor is edited in place (O(k^2) per change) instead
/// of being recomputed, so one inner iteration costs O(k^2) regardless of
/// the row count.
class IncrementalNnls {
 public:
  IncrementalNnls(const GramSystem& gs, std::size_t max_iterations,
                  double tol, const std::vector<std::size_t>& warm,
                  const NnlsWarmFactor* cached)
      : gs_(gs),
        n_(gs.gram.cols()),
        max_iterations_(max_iterations),
        tol_(tol),
        warm_(warm),
        cached_(cached),
        in_passive_(n_, 0),
        blocked_(n_, 0),
        chol_(n_) {}

  NnlsResult run() {
    result_.x.assign(n_, 0.0);
    if (cached_ != nullptr || !warm_.empty()) warm_up();
    Vector w = gradient();

    while (result_.iterations < max_iterations_) {
      const std::size_t best = select(w);
      if (best == n_) {
        result_.converged = true;
        break;
      }
      if (!insert(best)) {
        // Numerically dependent on the current passive set even after a
        // refactorize: its gradient is a combination of the (zero) passive
        // gradients, so skipping it is safe. Blocked until the iterate
        // moves. The refactorize may have pruned drifted columns (x
        // changed), so the gradient is recomputed before reselecting.
        blocked_[best] = 1;
        w = gradient();
        continue;
      }
      inner_loop();
      w = gradient();
    }

    finish_residual();
    result_.active_set.assign(passive_.begin(), passive_.end());
    std::sort(result_.active_set.begin(), result_.active_set.end());
    return std::move(result_);
  }

 private:
  /// Seeds the passive set from a previous solve's support before the
  /// active-set loop starts. Two phases: admit every valid, independent
  /// seed column into the factor, then restore feasibility by solving the
  /// restricted problem and dropping non-positive components (back to
  /// front, editing the factor in place) until the restricted optimum is
  /// strictly feasible. From there the standard outer loop takes over with
  /// x already at the seeded set's optimum — when the seed matches the true
  /// support, the first gradient check certifies optimality immediately.
  /// The restoration solves are not counted as iterations: the passive set
  /// strictly shrinks each round, so the phase is bounded by the seed size.
  void warm_up() {
    if (cached_ != nullptr) {
      // Adopt the pre-factored seed: bit-identical to running the
      // admission loop below, minus the O(k^3) appends.
      chol_ = cached_->chol;
      passive_ = cached_->passive;
      for (std::size_t j : passive_) in_passive_[j] = 1;
    } else {
      NnlsWarmFactor seeded = seed_warm_factor(gs_, warm_);
      chol_ = std::move(seeded.chol);
      passive_ = std::move(seeded.passive);
      for (std::size_t j : passive_) in_passive_[j] = 1;
    }
    while (!passive_.empty()) {
      Vector cp(passive_.size());
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        cp[i] = gs_.atb[passive_[i]];
      }
      Vector z = chol_.solve(cp);
      if (!all_finite(z)) {
        // Factor poisoned by the seed; abandon it and start cold.
        chol_.clear();
        for (std::size_t j : passive_) in_passive_[j] = 0;
        passive_.clear();
        break;
      }
      bool feasible = true;
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        if (z[i] <= tol_) feasible = false;
      }
      if (feasible) {
        for (std::size_t i = 0; i < passive_.size(); ++i) {
          result_.x[passive_[i]] = z[i];
        }
        break;
      }
      for (std::size_t i = passive_.size(); i-- > 0;) {
        if (z[i] > tol_) continue;
        in_passive_[passive_[i]] = 0;
        chol_.remove(i);
        passive_.erase(passive_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  /// w = c - G x, using only the non-zero (passive) entries of x.
  Vector gradient() const {
    Vector w = gs_.atb;
    for (std::size_t j : passive_) {
      const double xj = result_.x[j];
      if (xj == 0.0) continue;
      const double* row = gs_.gram.row_data(j);  // row j == column j
      for (std::size_t i = 0; i < n_; ++i) {
        w[i] -= xj * row[i];
      }
    }
    return w;
  }

  std::size_t select(const Vector& w) const {
    std::size_t best = n_;
    double best_w = tol_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (!in_passive_[j] && !blocked_[j] && w[j] > best_w) {
        best_w = w[j];
        best = j;
      }
    }
    return best;
  }

  Vector cross_terms(std::size_t j) const {
    Vector cross(passive_.size());
    for (std::size_t i = 0; i < passive_.size(); ++i) {
      cross[i] = gs_.gram(passive_[i], j);
    }
    return cross;
  }

  /// Rebuilds the factor of G[P, P] from scratch. Columns that no longer
  /// pass the dependence test are dropped from the passive set outright
  /// (x -> 0, blocked): the fallback for numerical drift after many edits.
  void refactorize() {
    ++result_.refactorizations;
    chol_.clear();
    std::vector<std::size_t> kept;
    for (std::size_t j : passive_) {
      Vector cross(kept.size());
      for (std::size_t i = 0; i < kept.size(); ++i) {
        cross[i] = gs_.gram(kept[i], j);
      }
      if (chol_.append(cross, gs_.gram(j, j), kRelTol)) {
        kept.push_back(j);
      } else {
        result_.x[j] = 0.0;
        in_passive_[j] = 0;
        blocked_[j] = 1;
      }
    }
    passive_ = std::move(kept);
  }

  bool insert(std::size_t j) {
    if (!chol_.append(cross_terms(j), gs_.gram(j, j), kRelTol)) {
      refactorize();
      if (!chol_.append(cross_terms(j), gs_.gram(j, j), kRelTol)) {
        return false;
      }
    }
    in_passive_[j] = 1;
    passive_.push_back(j);
    return true;
  }

  void inner_loop() {
    for (;;) {
      ++result_.iterations;
      Vector cp(passive_.size());
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        cp[i] = gs_.atb[passive_[i]];
      }
      Vector z = chol_.solve(cp);
      if (!all_finite(z)) {
        // Factor drifted into garbage: rebuild once and retry the solve.
        refactorize();
        cp.resize(passive_.size());
        for (std::size_t i = 0; i < passive_.size(); ++i) {
          cp[i] = gs_.atb[passive_[i]];
        }
        z = chol_.solve(cp);
        if (!all_finite(z)) break;  // give up on this passive set
      }

      bool all_positive = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        if (z[i] <= tol_) {
          all_positive = false;
          const double xj = result_.x[passive_[i]];
          const double denom = xj - z[i];
          if (denom > 0) {
            alpha = std::min(alpha, xj / denom);
          }
        }
      }
      if (all_positive) {
        bool moved = false;
        for (std::size_t i = 0; i < passive_.size(); ++i) {
          moved |= result_.x[passive_[i]] != z[i];
          result_.x[passive_[i]] = z[i];
        }
        // Re-admit blocked columns only when the iterate actually moved: a
        // degenerate round ends by re-solving the shrunken passive set to
        // the bit-identical previous optimum, and unblocking there would
        // hand the gradient's argmax straight back to the same column.
        if (moved) unblock();
        break;
      }
      if (!std::isfinite(alpha)) alpha = 0.0;  // no clip bounds the step
      bool moved = false;
      for (std::size_t i = 0; i < passive_.size(); ++i) {
        const std::size_t j = passive_[i];
        const double stepped =
            result_.x[j] + alpha * (z[i] - result_.x[j]);
        moved |= stepped != result_.x[j];
        result_.x[j] = stepped;
      }
      // Move variables that hit zero back to the active set, editing the
      // factor from the back so earlier positions stay valid. A degenerate
      // step — one that left x bit-for-bit unchanged, whether alpha was
      // forced to 0 or rounded to no effect — blocks the dropped columns
      // from immediate re-entry; otherwise the same column would be
      // selected again forever (the anti-cycling safeguard: between real
      // moves, every iteration strictly shrinks the candidate pool).
      for (std::size_t i = passive_.size(); i-- > 0;) {
        const std::size_t j = passive_[i];
        if (result_.x[j] > tol_) continue;
        result_.x[j] = 0.0;
        in_passive_[j] = 0;
        if (!moved) blocked_[j] = 1;
        chol_.remove(i);
        passive_.erase(passive_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      if (moved) unblock();
      if (passive_.empty()) break;
      if (result_.iterations >= max_iterations_) break;
    }
  }

  void unblock() { std::fill(blocked_.begin(), blocked_.end(), 0); }

  static bool all_finite(const Vector& v) {
    for (double x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  }

  /// ||A x - b||^2 = b^T b - 2 x^T c + x^T G x, over the passive support.
  void finish_residual() {
    double quad = 0.0, lin = 0.0;
    for (std::size_t j : passive_) {
      lin += result_.x[j] * gs_.atb[j];
      double row = 0.0;
      for (std::size_t k : passive_) {
        row += gs_.gram(j, k) * result_.x[k];
      }
      quad += result_.x[j] * row;
    }
    result_.residual_norm =
        std::sqrt(std::max(0.0, gs_.btb - 2.0 * lin + quad));
  }

  static constexpr double kRelTol = kSeedRelTol;

  const GramSystem& gs_;
  const std::size_t n_;
  const std::size_t max_iterations_;
  const double tol_;
  const std::vector<std::size_t>& warm_;
  const NnlsWarmFactor* cached_;
  NnlsResult result_;
  std::vector<std::size_t> passive_;
  std::vector<std::uint8_t> in_passive_;
  std::vector<std::uint8_t> blocked_;
  UpdatableCholesky chol_;
};

std::size_t resolve_iteration_cap(std::size_t requested, std::size_t cols) {
  return requested == 0 ? 3 * cols + 10 : requested;
}

}  // namespace

NnlsWarmFactor seed_warm_factor(const GramSystem& gs,
                                const std::vector<std::size_t>& warm) {
  const std::size_t n = gs.gram.cols();
  NnlsWarmFactor out;
  out.chol = UpdatableCholesky(n);
  std::vector<std::uint8_t> in(n, 0);
  for (std::size_t j : warm) {
    if (j >= n || in[j]) continue;
    if (gs.gram(j, j) <= 0.0) continue;  // empty column
    Vector cross(out.passive.size());
    for (std::size_t i = 0; i < out.passive.size(); ++i) {
      cross[i] = gs.gram(out.passive[i], j);
    }
    if (!out.chol.append(cross, gs.gram(j, j), kSeedRelTol)) {
      continue;  // dependent on the columns seeded so far; skip
    }
    in[j] = 1;
    out.passive.push_back(j);
  }
  return out;
}

GramSystem make_gram(const Matrix& a, const Vector& b) {
  TOMO_REQUIRE(b.size() == a.rows(), "make_gram: rhs length mismatch");
  const std::size_t n = a.cols();
  GramSystem gs;
  gs.gram = Matrix(n, n);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    for (std::size_t i = 0; i < n; ++i) {
      if (row[i] == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) {
        gs.gram(i, j) += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      gs.gram(i, j) = gs.gram(j, i);
    }
  }
  gs.atb = a.multiply_transposed(b);
  gs.btb = dot(b, b);
  return gs;
}

NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
  TOMO_REQUIRE(b.size() == a.rows(), "nnls: rhs length mismatch");
  const std::size_t cap =
      resolve_iteration_cap(options.max_iterations, a.cols());
  if (options.mode == NnlsMode::kReference) {
    return nnls_reference(a, b, cap, options.tol);
  }
  NnlsOptions resolved = options;
  resolved.max_iterations = cap;
  return nnls_gram(make_gram(a, b), resolved);
}

NnlsResult nnls(const Matrix& a, const Vector& b, std::size_t max_iterations,
                double tol) {
  NnlsOptions options;
  options.max_iterations = max_iterations;
  options.tol = tol;
  return nnls(a, b, options);
}

NnlsResult nnls_gram(const GramSystem& system, const NnlsOptions& options) {
  TOMO_REQUIRE(options.mode == NnlsMode::kIncremental,
               "nnls_gram: the reference engine needs the dense matrix");
  TOMO_REQUIRE(system.gram.rows() == system.gram.cols(),
               "nnls_gram: gram matrix must be square");
  TOMO_REQUIRE(system.atb.size() == system.gram.cols(),
               "nnls_gram: atb length mismatch");
  if (options.warm_factor != nullptr) {
    TOMO_REQUIRE(
        options.warm_factor->chol.size() ==
            options.warm_factor->passive.size(),
        "nnls_gram: malformed warm factor");
    for (std::size_t j : options.warm_factor->passive) {
      TOMO_REQUIRE(j < system.gram.cols(),
                   "nnls_gram: warm factor column out of range");
    }
  }
  const std::size_t cap =
      resolve_iteration_cap(options.max_iterations, system.gram.cols());
  return IncrementalNnls(system, cap, options.tol, options.warm_start,
                         options.warm_factor)
      .run();
}

}  // namespace tomo::linalg
