// Non-negative least squares (Lawson-Hanson active-set method).
//
// Used to solve the rank-deficient tomography systems: with the
// substitution u = -x (x are log-probabilities, hence <= 0), the system
// A x = y becomes A u = -y with u >= 0, and NNLS both honours the sign
// constraint and yields sparse minimum-ish solutions, which is the effect
// the paper's "minimize the L1 norm error" fallback is after.
//
// Two interchangeable engines share the active-set logic:
//   kIncremental (default) — works on the normal equations of a
//     once-per-solve Gram system (G = A^T A, c = A^T b): every inner
//     iteration edits an UpdatableCholesky factor of the passive block
//     G[P, P] in O(k^2) and triangular-solves, instead of re-running an
//     m x k QR from scratch. Numerically dependent passive candidates are
//     rejected at insert time (with a condition-triggered refactorize
//     fallback), and columns dropped by a degenerate zero-length step are
//     blocked from immediate re-entry until the iterate moves —
//     the anti-cycling safeguard.
//   kReference — the historical implementation (fresh rank-revealing QR on
//     the passive submatrix per iteration); kept for differential testing
//     (tests/test_nnls_fast.cpp) and as the bit-for-bit baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/updatable_cholesky.hpp"

namespace tomo::linalg {

enum class NnlsMode {
  kIncremental,  // cached Gram + updatable Cholesky (default)
  kReference,    // fresh dense QR per inner iteration
};

/// The measurement-independent half of a warm start, precomputed: the
/// Cholesky factor of G[P, P] with the admissible seed columns already
/// appended (in seed order, dependent/empty columns dropped). Admission
/// depends only on the Gram matrix and the seed — not the right-hand
/// side — so callers solving many systems that share G (the batched
/// bootstrap's replicates) build this once and let every solve copy the
/// factor in O(k^2) instead of re-appending k columns in O(k^3). The copy
/// is bit-identical to the rebuild, so results don't change.
struct NnlsWarmFactor {
  UpdatableCholesky chol;
  std::vector<std::size_t> passive;  // admitted seed columns, factor order
};

struct GramSystem;

/// Runs the warm-up admission loop once. `warm` is interpreted exactly as
/// NnlsOptions::warm_start (out-of-range, duplicate, empty-column, or
/// dependent entries are dropped).
NnlsWarmFactor seed_warm_factor(const GramSystem& gs,
                                const std::vector<std::size_t>& warm);

struct NnlsOptions {
  NnlsMode mode = NnlsMode::kIncremental;
  /// 0 means the 3 * cols + 10 default, which is ample in practice.
  std::size_t max_iterations = 0;
  /// Gradient/positivity tolerance of the active-set logic.
  double tol = 1e-10;
  /// Warm start (incremental engine only): columns seeded into the passive
  /// set before the active-set loop runs — typically the previous window's
  /// converged support in a streaming solve. Out-of-range, duplicate, or
  /// numerically dependent entries are dropped, and seeded columns whose
  /// restricted solution is infeasible are removed before iteration, so a
  /// stale or perturbed set is always safe: the result is the same optimum
  /// a cold solve reaches, just via fewer iterations. The reference engine
  /// ignores it.
  std::vector<std::size_t> warm_start;
  /// Optional pre-factored seed (incremental engine only). Must have been
  /// built by seed_warm_factor against a GramSystem with the *same* gram
  /// matrix as the one being solved (the rhs may differ). When set it
  /// replaces the warm_start admission loop — warm_start itself is then
  /// ignored. Not owned; the caller keeps it alive for the solve.
  const NnlsWarmFactor* warm_factor = nullptr;
};

struct NnlsResult {
  Vector x;                    // the non-negative solution
  double residual_norm = 0.0;  // ||A x - b||_2
  std::size_t iterations = 0;
  bool converged = false;  // false if the iteration cap was hit
  /// Full refactorizations of the passive-set factor (incremental mode
  /// only): > 0 means the condition-triggered fallback fired.
  std::size_t refactorizations = 0;
  /// The converged passive set (columns with x > 0), sorted ascending.
  /// Filled by the incremental engine — feed it back through
  /// NnlsOptions::warm_start to seed the next related solve. The reference
  /// engine leaves it empty.
  std::vector<std::size_t> active_set;
};

/// Normal-equations view of a least-squares problem: everything NNLS needs
/// once the rows of A are no longer required individually. Building it is
/// the only O(rows) work in an incremental solve.
struct GramSystem {
  Matrix gram;  // A^T A, cols x cols, symmetric
  Vector atb;   // A^T b
  double btb = 0.0;  // b^T b, for residual recovery
};

/// Builds the Gram system of a dense problem (one pass over A).
GramSystem make_gram(const Matrix& a, const Vector& b);

/// Solves min ||A x - b||_2 subject to x >= 0.
NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options);

/// Backward-compatible overload: default (incremental) engine.
NnlsResult nnls(const Matrix& a, const Vector& b,
                std::size_t max_iterations = 0, double tol = 1e-10);

/// Incremental engine entry point for callers that already hold the Gram
/// system (the sparse solver front end builds it without ever
/// materializing A). `options.mode` must be kIncremental.
NnlsResult nnls_gram(const GramSystem& system, const NnlsOptions& options = {});

}  // namespace tomo::linalg
