// Non-negative least squares (Lawson-Hanson active-set method).
//
// Used to solve the rank-deficient tomography systems: with the
// substitution u = -x (x are log-probabilities, hence <= 0), the system
// A x = y becomes A u = -y with u >= 0, and NNLS both honours the sign
// constraint and yields sparse minimum-ish solutions, which is the effect
// the paper's "minimize the L1 norm error" fallback is after.
#pragma once

#include "linalg/matrix.hpp"

namespace tomo::linalg {

struct NnlsResult {
  Vector x;              // the non-negative solution
  double residual_norm;  // ||A x - b||_2
  std::size_t iterations;
  bool converged;  // false if the iteration cap was hit
};

/// Solves min ||A x - b||_2 subject to x >= 0.
/// `max_iterations` defaults to 3 * cols, which is ample in practice.
NnlsResult nnls(const Matrix& a, const Vector& b,
                std::size_t max_iterations = 0, double tol = 1e-10);

}  // namespace tomo::linalg
