// Quickstart: the paper's Figure 1(a) toy end to end.
//
// Builds the four-link topology, declares that e1 and e2 may be correlated,
// simulates correlated congestion, and infers every link's congestion
// probability three ways: the practical correlation algorithm (§4), the
// exact theorem algorithm (§3), and the independence baseline [12].
#include <cstdio>
#include <memory>

#include "core/correlation_algorithm.hpp"
#include "core/independence_algorithm.hpp"
#include "core/theorem_algorithm.hpp"
#include "corr/joint_table.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace tomo;

  // --- Topology: Figure 1(a) -------------------------------------------
  graph::Graph g;
  const auto a = g.add_node("a"), b = g.add_node("b"), c = g.add_node("c");
  const auto d = g.add_node("d"), f = g.add_node("f");
  const auto e1 = g.add_link(a, b);  // may be correlated with e2
  const auto e2 = g.add_link(d, b);  // (they share a physical link)
  const auto e3 = g.add_link(b, c);
  const auto e4 = g.add_link(b, f);

  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e3});  // P1
  paths.emplace_back(g, std::vector<graph::LinkId>{e2, e3});  // P2
  paths.emplace_back(g, std::vector<graph::LinkId>{e2, e4});  // P3

  // --- Correlation structure: C = {{e1,e2},{e3},{e4}} -------------------
  corr::CorrelationSets sets(4, {{e1, e2}, {e3}, {e4}});

  // --- Ground truth: e1,e2 strongly correlated --------------------------
  corr::SetDistribution d0;  // states 00, e1, e2, e1&e2
  d0.prob = {0.65, 0.10, 0.05, 0.20};
  corr::SetDistribution d1;
  d1.prob = {0.85, 0.15};
  corr::SetDistribution d2;
  d2.prob = {0.60, 0.40};
  corr::JointTableModel truth(sets, {d0, d1, d2});

  // --- Simulate unicast probing ----------------------------------------
  sim::SimulatorConfig config;
  config.snapshots = 20000;
  config.packets_per_path = 800;
  config.seed = 7;
  auto simulated = sim::simulate(g, paths, truth, config);
  const sim::EmpiricalMeasurement measurement(std::move(simulated.measurement));
  const graph::CoverageIndex coverage(g, paths);

  // --- Infer -------------------------------------------------------------
  const auto correlation =
      core::infer_congestion(g, paths, coverage, sets, measurement);
  const auto independence =
      core::infer_congestion_independent(g, paths, coverage, measurement);
  const auto theorem =
      core::run_theorem_algorithm(coverage, sets, measurement);

  std::printf("link   truth   correlation   theorem   independence\n");
  for (graph::LinkId e = 0; e < 4; ++e) {
    std::printf("  e%zu   %.3f      %.3f       %.3f        %.3f\n", e + 1,
                truth.marginal(e), correlation.congestion_prob[e],
                theorem.congestion_prob[e],
                independence.congestion_prob[e]);
  }
  std::printf(
      "\njoint P(e1 & e2 congested): truth %.3f, theorem identifies %.3f\n",
      truth.set_state_prob(0, {e1, e2}) /* exactly-both */ +
          0.0,  // table state {e1,e2}
      core::joint_congested_prob(theorem, sets, {e1, e2}));
  std::printf(
      "equations used: %zu single-path + %zu pair (rank %zu / %zu links)\n",
      correlation.system.n1, correlation.system.n2,
      correlation.system.rank, correlation.system.link_count);
  return 0;
}
