// Identifiability diagnosis and repair (paper §3.3).
//
// Starts from the paper's Figure 1(b) — a topology where Assumption 4
// fails and the correlated pair {e1,e2} cannot be told apart from {e3} —
// and walks through the paper's two remedies:
//   1. alter the topology (add node v5 / path P3, producing Figure 1(a)),
//   2. merge indistinguishable links and characterize the merged links.
// Finishes with bootstrap confidence intervals on the repaired system.
#include <cstdio>

#include "core/bootstrap.hpp"
#include "core/merged_inference.hpp"
#include "corr/common_shock.hpp"
#include "corr/identifiability.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace tomo;

  // --- Figure 1(b): the broken topology -------------------------------
  graph::Graph g;
  const auto a = g.add_node("v4"), b = g.add_node("v3");
  const auto c = g.add_node("v1"), d = g.add_node("v4b");
  const auto e1 = g.add_link(a, b);
  const auto e2 = g.add_link(d, b);
  const auto e3 = g.add_link(b, c);
  std::vector<graph::Path> paths;
  paths.emplace_back(g, std::vector<graph::LinkId>{e1, e3});
  paths.emplace_back(g, std::vector<graph::LinkId>{e2, e3});
  corr::CorrelationSets sets(3, {{e1, e2}, {e3}});

  const graph::CoverageIndex coverage(g, paths);
  const auto report = corr::check_identifiability(coverage, sets);
  std::printf("Figure 1(b): Assumption 4 %s (%zu collision(s), "
              "unidentifiable links:",
              report.holds ? "holds" : "VIOLATED",
              report.collisions.size());
  for (graph::LinkId e : report.unidentifiable_links) {
    std::printf(" e%zu", e + 1);
  }
  std::printf(")\n");

  // --- Ground truth: e1,e2 congest together ----------------------------
  std::vector<corr::Shock> shocks(2);
  shocks[0].rho = 0.25;
  shocks[0].members = {e1, e2};
  corr::CommonShockModel truth(sets, {0.05, 0.05, 0.2}, shocks);

  sim::SimulatorConfig config;
  config.snapshots = 10000;
  config.packets_per_path = 1000;
  config.seed = 4;
  const auto simulated = sim::simulate(g, paths, truth, config);
  // The bootstrap below resamples raw snapshots, so materialize the
  // per-snapshot observations once and share them.
  const sim::PathObservations observations = simulated.observations();
  const sim::EmpiricalMeasurement measurement(observations);

  // --- Remedy 2: merge indistinguishable links -------------------------
  const core::MergedInferenceResult merged =
      core::infer_on_merged(g, paths, sets, measurement);
  std::printf("\nmerge transformation: %zu round(s), %zu merged link(s)\n",
              merged.transform.merge_rounds,
              merged.transform.graph.link_count());
  for (graph::LinkId m = 0; m < merged.transform.graph.link_count(); ++m) {
    std::printf("  merged link %zu = {", m);
    for (std::size_t i = 0; i < merged.transform.composition[m].size();
         ++i) {
      std::printf("%se%zu", i ? "," : "",
                  merged.transform.composition[m][i] + 1);
    }
    // True probability of the merged link: congested iff any member is.
    std::vector<graph::LinkId> members = merged.transform.composition[m];
    const double truth_p = 1.0 - truth.prob_all_good(members);
    std::printf("}  inferred %.3f  (truth %.3f)\n",
                merged.inference.congestion_prob[m], truth_p);
  }

  // --- Bootstrap intervals on the merged system ------------------------
  const graph::CoverageIndex merged_cov(merged.transform.graph,
                                        merged.transform.paths);
  const corr::CorrelationSets merged_sets(
      merged.transform.graph.link_count(), merged.transform.partition);
  core::BootstrapOptions boot;
  boot.replicates = 50;
  const core::BootstrapResult intervals = core::bootstrap_congestion(
      merged.transform.graph, merged.transform.paths, merged_cov,
      merged_sets, observations, boot);
  std::printf("\n90%% bootstrap intervals (merged links):\n");
  for (graph::LinkId m = 0; m < intervals.point.size(); ++m) {
    std::printf("  merged link %zu: %.3f  [%.3f, %.3f]\n", m,
                intervals.point[m], intervals.lower[m],
                intervals.upper[m]);
  }
  std::printf("\nGranularity is coarser — that is the §3.3 trade-off: the "
              "merged links are\nidentifiable, the originals inside them "
              "are not.\n");
  (void)c;
  return 0;
}
