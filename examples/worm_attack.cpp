// Unknown correlation patterns (paper §5, Fig. 5): a botnet periodically
// floods a set of links scattered across different correlation sets. The
// operator cannot know this pattern, so the algorithm's declared structure
// is wrong for exactly those links — yet it should degrade gracefully and
// still beat the independence baseline.
#include <cstdio>

#include "core/experiment.hpp"
#include "metrics/cdf.hpp"
#include "util/stats.hpp"

int main() {
  using namespace tomo;

  core::ScenarioConfig scenario;
  scenario.topology = core::TopologyKind::kPlanetLab;
  scenario.routers = 120;
  scenario.vantage_points = 12;
  scenario.congested_fraction = 0.10;
  scenario.mislabeled_fraction = 0.5;  // half the congested links wormed
  scenario.worm_rho = 0.4;
  scenario.seed = 17;
  const core::ScenarioInstance inst = core::build_scenario(scenario);
  std::printf("%s\n", inst.description.c_str());
  std::printf("congested links: %zu, worm targets: %zu\n",
              inst.congested_links.size(), inst.mislabeled_links.size());

  core::ExperimentConfig config;
  config.sim.snapshots = 2000;
  config.sim.packets_per_path = 500;
  config.sim.seed = 4;
  const core::ExperimentResult result = core::run_experiment(inst, config);

  const auto corr_err = result.correlation_errors();
  const auto ind_err = result.independence_errors();
  std::printf("\npotentially congested links evaluated: %zu\n",
              result.potentially_congested.size());
  std::printf("mean abs error:   correlation %.4f   independence %.4f\n",
              mean(corr_err), mean(ind_err));
  std::printf("links with error <= 0.1:  correlation %.1f%%   "
              "independence %.1f%%\n",
              metrics::cdf_at(corr_err, 0.1),
              metrics::cdf_at(ind_err, 0.1));

  // Error specifically on the mislabeled (wormed) links.
  std::vector<double> corr_worm, ind_worm;
  for (graph::LinkId e : inst.mislabeled_links) {
    corr_worm.push_back(std::abs(result.correlation.congestion_prob[e] -
                                 inst.true_marginals[e]));
    ind_worm.push_back(std::abs(result.independence.congestion_prob[e] -
                                inst.true_marginals[e]));
  }
  if (!corr_worm.empty()) {
    std::printf("on the wormed links only: correlation %.4f   "
                "independence %.4f\n",
                mean(corr_worm), mean(ind_worm));
  }
  return 0;
}
