// SLA monitoring across opaque neighbour domains (paper §1, scenario ii).
//
// An operator probes through a set of neighbouring autonomous systems whose
// internals are hidden behind MPLS. Domain-level links that exit the same
// AS share physical infrastructure, so each AS becomes a correlation set.
// This example generates such a two-level topology, derives the ground
// truth from router-level congestion (the paper's Brite methodology), runs
// both algorithms, and reports which ASes look out of SLA.
#include <cstdio>
#include <map>

#include "core/correlation_algorithm.hpp"
#include "core/independence_algorithm.hpp"
#include "corr/router_derived.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "topogen/hierarchical.hpp"
#include "util/stats.hpp"

int main() {
  using namespace tomo;

  topogen::HierarchicalParams params;
  params.as_nodes = 50;
  params.endpoints = 12;
  params.seed = 2026;
  const topogen::GeneratedTopology topo =
      topogen::generate_hierarchical(params);
  std::printf("topology: %s\n", topo.description.c_str());

  corr::CorrelationSets sets(topo.graph.link_count(), topo.partition);

  // Ground truth straight from the router level: a handful of router-level
  // links are congestion-prone; AS-level links inherit congestion (and
  // correlation) from them.
  Rng rng(99);
  std::vector<double> router_prob(topo.router_link_count, 0.0);
  for (double& p : router_prob) {
    if (rng.bernoulli(0.08)) {
      p = rng.uniform(0.1, 0.5);
    }
  }
  corr::RouterDerivedModel truth(sets, topo.underlying, router_prob);

  sim::SimulatorConfig config;
  config.snapshots = 4000;
  config.packets_per_path = 600;
  config.seed = 3;
  auto simulated =
      sim::simulate(topo.graph, topo.paths, truth, config);
  const sim::EmpiricalMeasurement measurement(std::move(simulated.measurement));
  const graph::CoverageIndex coverage(topo.graph, topo.paths);

  const auto correlation = core::infer_congestion(
      topo.graph, topo.paths, coverage, sets, measurement);
  const auto independence = core::infer_congestion_independent(
      topo.graph, topo.paths, coverage, measurement);

  // Aggregate per source AS: worst estimated link congestion probability.
  std::map<std::string, double> worst_truth, worst_est;
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    const std::string& as_name =
        topo.graph.node_name(topo.graph.link(e).src);
    worst_truth[as_name] =
        std::max(worst_truth[as_name], truth.marginal(e));
    worst_est[as_name] =
        std::max(worst_est[as_name], correlation.congestion_prob[e]);
  }

  std::printf("\nASes whose worst link exceeds a 10%% congestion SLA:\n");
  std::printf("  %-8s %-14s %-14s\n", "AS", "truth", "estimated");
  for (const auto& [as_name, truth_p] : worst_truth) {
    const double est = worst_est[as_name];
    if (truth_p > 0.10 || est > 0.10) {
      std::printf("  %-8s %-14.3f %-14.3f %s\n", as_name.c_str(), truth_p,
                  est,
                  (truth_p > 0.10) == (est > 0.10) ? "" : "  <-- disagree");
    }
  }

  // Accuracy summary over all links.
  std::vector<double> corr_err, ind_err;
  for (graph::LinkId e = 0; e < topo.graph.link_count(); ++e) {
    corr_err.push_back(
        std::abs(correlation.congestion_prob[e] - truth.marginal(e)));
    ind_err.push_back(
        std::abs(independence.congestion_prob[e] - truth.marginal(e)));
  }
  std::printf("\nmean abs error: correlation %.4f, independence %.4f\n",
              mean(corr_err), mean(ind_err));
  return 0;
}
