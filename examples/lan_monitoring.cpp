// Non-intrusive LAN monitoring from traceroute data (paper §1, scenario i,
// and Fig. 2(a)).
//
// An operator tracerouted her campus network; Ethernet switches do not
// answer traceroute, so links that cross the same switch may share physical
// segments. The traces (plus a router->AS/zone mapping) are fed to the
// traceroute ingester, links inside one zone form a correlation set, and
// the correlation algorithm estimates per-link congestion probabilities.
#include <cstdio>
#include <sstream>

#include "core/correlation_algorithm.hpp"
#include "corr/model_factory.hpp"
#include "graph/coverage.hpp"
#include "sim/measurement.hpp"
#include "sim/simulator.hpp"
#include "topogen/traceroute.hpp"

int main() {
  using namespace tomo;

  // Traceroute dump: hosts h1..h4 probing each other across two zones.
  // Zone 10 is one LAN (an invisible switch connects sw-a, sw-b, sw-c).
  std::istringstream traces(R"(
trace h1 sw-a sw-b core h3
trace h1 sw-a sw-c core h4
trace h2 sw-b sw-c core h4
trace h2 sw-b core h3
asn sw-a 10
asn sw-b 10
asn sw-c 10
)");
  const graph::MeasuredSystem system = topogen::parse_traceroutes(traces);
  std::printf("parsed: %zu nodes, %zu links, %zu paths, %zu corr sets\n",
              system.graph.node_count(), system.graph.link_count(),
              system.paths.size(), system.partition.size());

  corr::CorrelationSets sets(system.graph.link_count(), system.partition);
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    if (sets.set(s).size() > 1) {
      std::printf("correlation set %zu:", s);
      for (graph::LinkId e : sets.set(s)) {
        std::printf(" %s->%s",
                    system.graph.node_name(system.graph.link(e).src).c_str(),
                    system.graph.node_name(system.graph.link(e).dst).c_str());
      }
      std::printf("\n");
    }
  }

  // Ground truth: the intra-LAN links congest together (shared switch
  // fabric); one uplink congests independently.
  std::vector<graph::LinkId> congested;
  std::vector<double> marginals;
  for (std::size_t s = 0; s < sets.set_count(); ++s) {
    if (sets.set(s).size() > 1) {
      for (graph::LinkId e : sets.set(s)) {
        congested.push_back(e);
        marginals.push_back(0.3);
      }
    }
  }
  if (congested.empty()) {
    congested.push_back(0);
    marginals.push_back(0.3);
  }
  auto truth = corr::make_clustered_shock_model(sets, congested, marginals,
                                                /*strength=*/0.8);

  sim::SimulatorConfig config;
  config.snapshots = 10000;
  config.packets_per_path = 500;
  config.seed = 11;
  auto simulated =
      sim::simulate(system.graph, system.paths, *truth, config);
  const sim::EmpiricalMeasurement measurement(std::move(simulated.measurement));
  const graph::CoverageIndex coverage(system.graph, system.paths);

  const auto result = core::infer_congestion(system.graph, system.paths,
                                             coverage, sets, measurement);

  std::printf("\n%-16s %-8s %-10s\n", "link", "truth", "estimate");
  for (graph::LinkId e = 0; e < system.graph.link_count(); ++e) {
    std::printf("%-6s -> %-6s %-8.3f %-10.3f\n",
                system.graph.node_name(system.graph.link(e).src).c_str(),
                system.graph.node_name(system.graph.link(e).dst).c_str(),
                truth->marginal(e), result.congestion_prob[e]);
  }
  std::printf("\nequations: %zu singles + %zu pairs, rank %zu/%zu\n",
              result.system.n1, result.system.n2, result.system.rank,
              result.system.link_count);
  if (!result.refined_links.empty()) {
    std::printf("links treated as uncorrelated (Assumption 4 fallback): "
                "%zu\n",
                result.refined_links.size());
  }
  return 0;
}
